package patch_test

import (
	"fmt"

	"patch"
)

// Example runs the smallest useful simulation: PATCH-ALL on the
// microbenchmark, reporting whether direct requests produced
// cache-to-cache transfers.
func Example() {
	res, err := patch.Run(patch.Config{
		Protocol:   patch.PATCH,
		Variant:    patch.VariantAll,
		Cores:      8,
		Workload:   "micro",
		OpsPerCore: 200,
		Seed:       1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("completed:", res.Misses > 0 && res.Cycles > 0)
	fmt.Println("sharing misses observed:", res.SharingMisses > 0)
	// Output:
	// completed: true
	// sharing misses observed: true
}

// ExampleRunSeeds shows the paper's methodology: several perturbed runs
// summarised with a confidence interval.
func ExampleRunSeeds() {
	s, err := patch.RunSeeds(patch.Config{
		Protocol:   patch.Directory,
		Cores:      8,
		Workload:   "micro",
		OpsPerCore: 100,
		Seed:       1,
	}, 3)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("runs:", s.Runtime.N)
	fmt.Println("mean runtime positive:", s.Runtime.Mean > 0)
	// Output:
	// runs: 3
	// mean runtime positive: true
}

// ExampleConfig_variants enumerates the paper's PATCH configurations.
func ExampleConfig_variants() {
	for _, v := range patch.Variants() {
		fmt.Println(v)
	}
	// Output:
	// PATCH-None
	// PATCH-Owner
	// PATCH-BroadcastIfShared
	// PATCH-All
}
