package patch_test

import (
	"context"
	"fmt"

	"patch"
)

// Example runs the smallest useful simulation: PATCH-ALL on the
// microbenchmark, reporting whether direct requests produced
// cache-to-cache transfers.
func Example() {
	res, err := patch.Run(patch.Config{
		Protocol:   patch.PATCH,
		Variant:    patch.VariantAll,
		Cores:      8,
		Workload:   "micro",
		OpsPerCore: 200,
		Seed:       1,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("completed:", res.Misses > 0 && res.Cycles > 0)
	fmt.Println("sharing misses observed:", res.SharingMisses > 0)
	// Output:
	// completed: true
	// sharing misses observed: true
}

// ExampleRunSeeds shows the paper's methodology: several perturbed runs
// summarised with a confidence interval.
func ExampleRunSeeds() {
	s, err := patch.RunSeeds(patch.Config{
		Protocol:   patch.Directory,
		Cores:      8,
		Workload:   "micro",
		OpsPerCore: 100,
		Seed:       1,
	}, 3)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("runs:", s.Runtime.N)
	fmt.Println("mean runtime positive:", s.Runtime.Mean > 0)
	// Output:
	// runs: 3
	// mean runtime positive: true
}

// ExampleNew builds a validated configuration from functional options;
// invalid combinations surface as typed errors before any simulator is
// built.
func ExampleNew() {
	_, err := patch.New(
		patch.WithProtocol(patch.PATCH),
		patch.WithVariant(patch.VariantAll),
		patch.WithCores(12), // not a power of two: outside the paper's design space
	)
	fmt.Println("valid:", err == nil)
	fmt.Println(err)
	// Output:
	// valid: false
	// patch: core count must be a power of two in [1, 1024]: got 12
}

// ExampleSweep declares a protocol-comparison grid as a Matrix and runs
// it on the parallel sweep engine; cells come back in matrix order with
// deterministic summaries regardless of worker count.
func ExampleSweep() {
	m := patch.Matrix{
		Base: patch.MustNew(
			patch.WithCores(8),
			patch.WithWorkload("micro"),
			patch.WithOps(100),
			patch.WithSeed(1),
		),
		Protocols: []patch.ProtoVariant{
			{Protocol: patch.Directory},
			{Protocol: patch.PATCH, Variant: patch.VariantAll},
		},
		Seeds: 2,
	}
	res, err := patch.Sweep(context.Background(), m)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, c := range res.Cells {
		fmt.Printf("%s: %d runs, runtime positive: %v\n",
			c.Label, c.Summary.Runtime.N, c.Summary.Runtime.Mean > 0)
	}
	// Output:
	// Directory: 2 runs, runtime positive: true
	// PATCH-All: 2 runs, runtime positive: true
}

// ExampleConfig_variants enumerates the paper's PATCH configurations.
func ExampleConfig_variants() {
	for _, v := range patch.Variants() {
		fmt.Println(v)
	}
	// Output:
	// PATCH-None
	// PATCH-Owner
	// PATCH-BroadcastIfShared
	// PATCH-All
}
