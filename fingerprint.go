package patch

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// fingerprintVersion is bumped whenever the canonical encoding below
// changes meaning, so stale cache entries written by an older scheme
// can never be confused with current ones.
const fingerprintVersion = "patch-config-v1"

// Fingerprint returns a stable content address for the configuration:
// the hex SHA-256 of a canonical key=value encoding. Two configurations
// share a fingerprint exactly when they describe the same simulation,
// so the sweep service uses it as the result-cache key — determinism
// (a given fingerprint always produces byte-identical results) is what
// makes that cache exact rather than approximate.
//
// Canonical means:
//
//   - Fields are written in a fixed, explicit order with fixed names,
//     so reordering or renaming Config's Go fields cannot silently
//     change the hash (a golden test pins one known fingerprint).
//   - Documented zero-value defaults are normalised to their effective
//     values (0 cores = 64, empty workload = "micro", coarseness 0 =
//     1, bandwidth 0 = the paper's 16 B/cycle, tenure factor 0 = 2x),
//     so spelling a default explicitly does not split the cache.
//   - Variant is only significant under PATCH (the other protocols
//     ignore it), and bandwidth collapses to "unbounded" when link
//     contention is off.
//
// Seed is part of the fingerprint: each seeded replica of a sweep cell
// is its own cacheable simulation. SkipChecks is not: it selects
// end-of-run verification, never results. TraceFile participates by
// path only — the trace's bytes are not hashed — so cached results are
// trustworthy only while trace files are immutable; prefer fresh paths
// over editing a trace in place. When TraceFile is set the Workload
// name is normalised away entirely: the trace supplies every reference,
// the generator is never built (Validate skips the unknown-workload
// check too), so two configs replaying the identical trace must not
// split the cache over a field the simulation ignores.
func (c Config) Fingerprint() string {
	cores := c.Cores
	if cores == 0 {
		cores = 64
	}
	workload := c.Workload
	if c.TraceFile != "" {
		workload = ""
	} else if workload == "" {
		workload = "micro"
	}
	coarseness := c.DirectoryCoarseness
	if coarseness == 0 {
		coarseness = 1
	}
	bandwidth := "unbounded"
	if !c.UnboundedBandwidth {
		bw := c.BandwidthBytesPerKiloCycle
		if bw == 0 {
			bw = 16000
		}
		bandwidth = fmt.Sprintf("%d", bw)
	}
	tenure := c.TenureTimeoutFactor
	if tenure == 0 {
		tenure = 2
	}
	variant := "-"
	if c.Protocol == PATCH {
		variant = c.Variant.String()
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", fingerprintVersion)
	fmt.Fprintf(&b, "protocol=%s\n", c.Protocol.String())
	fmt.Fprintf(&b, "variant=%s\n", variant)
	fmt.Fprintf(&b, "cores=%d\n", cores)
	fmt.Fprintf(&b, "workload=%s\n", workload)
	fmt.Fprintf(&b, "trace_file=%s\n", c.TraceFile)
	fmt.Fprintf(&b, "ops_per_core=%d\n", c.OpsPerCore)
	fmt.Fprintf(&b, "warmup_ops=%d\n", c.WarmupOps)
	fmt.Fprintf(&b, "seed=%d\n", c.Seed)
	fmt.Fprintf(&b, "bandwidth=%s\n", bandwidth)
	fmt.Fprintf(&b, "coarseness=%d\n", coarseness)
	fmt.Fprintf(&b, "tenure_timeout_factor=%g\n", tenure)
	fmt.Fprintf(&b, "no_deact_window=%t\n", c.NoDeactWindow)
	fmt.Fprintf(&b, "max_cycles=%d\n", c.MaxCycles)
	// Fault lines are appended only for a plan that actually injects
	// something, so every fault-free spelling (nil plan, zero plan,
	// seed-only plan, dead windows) keeps the pre-fault golden hash and
	// shares cache entries with unfaulted configs.
	if fp := c.FaultPlan.toPlan(); fp != nil {
		fmt.Fprintf(&b, "fault_seed=%d\n", fp.Seed)
		fmt.Fprintf(&b, "fault_hop_jitter=%d\n", fp.HopJitter)
		for _, w := range fp.Degrade {
			if w.Multiplier <= 1 || w.To < w.From {
				continue // dead window: injects nothing
			}
			frac := w.LinkFraction
			if frac == 1 {
				frac = 0 // 0 and 1 both mean "all links"
			}
			fmt.Fprintf(&b, "fault_degrade=%d:%d:%d:%g\n", w.From, w.To, w.Multiplier, frac)
		}
		if bu := fp.Burst; bu.Period > 0 && bu.Duration > 0 && bu.Extra > 0 {
			fmt.Fprintf(&b, "fault_burst=%d:%d:%d\n", bu.Period, bu.Duration, bu.Extra)
		}
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}
