package patch

import (
	"encoding/json"
	"fmt"
	"io"

	"patch/internal/report"
)

// An Emitter receives sweep cells as they complete. Sweep guarantees
// cells arrive in matrix expansion order (Index 0, 1, 2, ...), so
// emitters can stream without buffering. Begin is called once with the
// total cell count before any cell; End is called exactly once after
// the last — including when the sweep fails or is cancelled, so
// streaming formats can terminate cleanly (output may then cover only
// a prefix of the cells).
type Emitter interface {
	Begin(cells int) error
	Cell(c CellResult) error
	End() error
}

// cellColumns names the flat per-cell record shared by the CSV, JSON
// and markdown emitters.
var cellColumns = []string{
	"label", "workload", "cores", "bandwidth", "coarseness", "seeds",
	"runtime_mean", "runtime_ci95", "bytes_per_miss_mean", "bytes_per_miss_ci95",
	"avg_miss_latency", "dropped_direct",
}

// cellValues flattens one cell into the cellColumns record.
func cellValues(c CellResult) []any {
	bw := "default"
	switch {
	case c.Config.UnboundedBandwidth:
		bw = "unbounded"
	case c.Config.BandwidthBytesPerKiloCycle > 0:
		bw = fmt.Sprintf("%d", c.Config.BandwidthBytesPerKiloCycle)
	}
	var lat, dropped float64
	for _, r := range c.Summary.Results {
		lat += r.AvgMissLatency / float64(len(c.Summary.Results))
		dropped += float64(r.DroppedDirectRequests) / float64(len(c.Summary.Results))
	}
	return []any{
		c.Label, c.Config.Workload, c.Config.Cores, bw, c.Config.DirectoryCoarseness,
		c.Summary.Runtime.N,
		c.Summary.Runtime.Mean, c.Summary.Runtime.CI95,
		c.Summary.BytesPerMiss.Mean, c.Summary.BytesPerMiss.CI95,
		lat, dropped,
	}
}

// CSVEmitter streams one comma-separated row per cell.
type CSVEmitter struct {
	W io.Writer

	table report.Table
}

func (e *CSVEmitter) Begin(int) error {
	e.table = report.Table{Columns: cellColumns}
	return e.table.CSV(e.W) // header
}

func (e *CSVEmitter) Cell(c CellResult) error {
	e.table.Columns, e.table.Rows = nil, nil
	e.table.AddRow(cellValues(c)...)
	return e.table.CSV(e.W)
}

func (e *CSVEmitter) End() error { return nil }

// JSONEmitter streams a JSON array of cell records.
type JSONEmitter struct {
	W io.Writer

	n int
}

func (e *JSONEmitter) Begin(int) error {
	e.n = 0
	_, err := io.WriteString(e.W, "[")
	return err
}

func (e *JSONEmitter) Cell(c CellResult) error {
	values := cellValues(c)
	rec := make(map[string]any, len(cellColumns))
	for i, n := range cellColumns {
		rec[n] = values[i]
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	sep := "\n "
	if e.n > 0 {
		sep = ",\n "
	}
	e.n++
	_, err = fmt.Fprintf(e.W, "%s%s", sep, b)
	return err
}

func (e *JSONEmitter) End() error {
	_, err := io.WriteString(e.W, "\n]\n")
	return err
}

// MarkdownEmitter accumulates cells into a GitHub-flavoured markdown
// table rendered at End.
type MarkdownEmitter struct {
	W     io.Writer
	Title string

	table report.Table
}

func (e *MarkdownEmitter) Begin(int) error {
	e.table = report.Table{Title: e.Title, Columns: cellColumns}
	return nil
}

func (e *MarkdownEmitter) Cell(c CellResult) error {
	e.table.AddRow(cellValues(c)...)
	return nil
}

func (e *MarkdownEmitter) End() error { return e.table.Markdown(e.W) }

// ChartEmitter accumulates cells and renders an ASCII bar chart of one
// metric at End, in the style of the paper's normalised-runtime
// figures.
type ChartEmitter struct {
	W io.Writer
	// Metric selects the bar value: "runtime" (default) or
	// "bytes/miss".
	Metric string
	Title  string
	Width  int

	labels []string
	values []float64
}

func (e *ChartEmitter) Begin(cells int) error {
	e.labels = make([]string, 0, cells)
	e.values = make([]float64, 0, cells)
	return nil
}

func (e *ChartEmitter) Cell(c CellResult) error {
	v := c.Summary.Runtime.Mean
	if e.Metric == "bytes/miss" {
		v = c.Summary.BytesPerMiss.Mean
	}
	e.labels = append(e.labels, fmt.Sprintf("%s/%s", c.Config.Workload, c.Label))
	e.values = append(e.values, v)
	return nil
}

func (e *ChartEmitter) End() error {
	report.BarChart{Title: e.Title, Width: e.Width}.Render(e.W, e.labels, e.values)
	return nil
}

// MultiEmitter fans cells out to several emitters.
type MultiEmitter []Emitter

func (m MultiEmitter) Begin(cells int) error {
	for _, e := range m {
		if err := e.Begin(cells); err != nil {
			return err
		}
	}
	return nil
}

func (m MultiEmitter) Cell(c CellResult) error {
	for _, e := range m {
		if err := e.Cell(c); err != nil {
			return err
		}
	}
	return nil
}

func (m MultiEmitter) End() error {
	for _, e := range m {
		if err := e.End(); err != nil {
			return err
		}
	}
	return nil
}
